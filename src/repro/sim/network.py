"""Simulated network: hosts, switches, links, and packet delivery.

The network model is intentionally simple but captures the three effects the
Canopus paper's evaluation hinges on:

1. **Per-hop propagation latency.**  Intra-rack hops are cheap, hops across
   the aggregation switch cost more, and inter-datacenter hops use the wide
   area latencies of Table 1.
2. **Link serialization and queuing.**  Every link has a bandwidth; a packet
   occupies the link for ``size / bandwidth`` seconds and packets queue FIFO
   behind each other.  Oversubscribed aggregation links therefore become the
   bottleneck for broadcast-heavy protocols (EPaxos) exactly as in §8.1.
3. **Receiver CPU service time.**  Each host processes incoming messages
   serially with a configurable per-message and per-byte cost, which is what
   saturates a centralized coordinator (the ZooKeeper leader in Fig. 5).

Routing is shortest-path over the host/switch graph, precomputed once per
topology.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.engine import Event, EventLoop, SimulationError

__all__ = [
    "Packet",
    "Link",
    "NetworkInterface",
    "Host",
    "Switch",
    "Network",
    "CpuModel",
    "DeliveryQueue",
]

#: Default per-message protocol framing overhead in bytes (headers etc.).
DEFAULT_HEADER_BYTES = 64


@dataclass
class Packet:
    """A message in flight between two hosts."""

    src: str
    dst: str
    payload: Any
    size_bytes: int
    packet_id: int = 0
    sent_at: float = 0.0
    hops: int = 0

    def total_bytes(self) -> int:
        return self.size_bytes + DEFAULT_HEADER_BYTES


@dataclass
class CpuModel:
    """Per-host CPU cost model for message processing.

    ``per_message_s`` dominates for the small 16-byte key-value requests the
    paper uses; ``per_byte_s`` matters for the large merged proposals Canopus
    ships between super-leaves in later rounds.  Sending also consumes CPU
    (serialization, syscalls) at ``send_fraction`` of the receive cost — this
    is what makes a node that broadcasts to everyone (a Zab leader, an EPaxos
    command leader) a bottleneck, as the paper observes.
    """

    per_message_s: float = 4e-6
    per_byte_s: float = 1e-9
    send_fraction: float = 0.5

    def service_time(self, packet: Packet) -> float:
        return self.per_message_s + self.per_byte_s * packet.total_bytes()

    def send_time(self, packet: Packet) -> float:
        return self.send_fraction * self.service_time(packet)


class DeliveryQueue:
    """Coalesces a stream of timed deliveries into one scheduled event.

    Links and host CPU queues hand over work whose completion times are
    (by construction) non-decreasing: link serialization and CPU busy-until
    both only move forward.  Instead of scheduling one event-loop entry per
    packet — which makes the heap grow with the number of in-flight
    messages — the queue keeps at most one outstanding event and, when it
    fires, flushes *every* pending item that is due at that instant.  This
    is the sim-network hot path batching: a burst to one destination costs
    one heap operation, not one per message.

    Items pushed out of order (possible only if a caller violates the
    monotonicity contract) fall back to a dedicated event so delivery
    timing is never wrong, merely unbatched.
    """

    __slots__ = ("loop", "deliver", "priority", "label", "_pending", "_event")

    def __init__(
        self,
        loop: EventLoop,
        deliver: Callable[[Any], None],
        priority: int,
        label: str,
    ) -> None:
        self.loop = loop
        self.deliver = deliver
        self.priority = priority
        self.label = label
        self._pending: "deque[Tuple[float, Any]]" = deque()
        self._event: Optional[Event] = None

    def __len__(self) -> int:
        return len(self._pending)

    def push(self, when: float, item: Any) -> None:
        """Enqueue ``item`` for delivery at absolute time ``when``."""
        pending = self._pending
        if pending and when < pending[-1][0]:
            self.loop.schedule_at(
                when, lambda: self.deliver(item), priority=self.priority, label=self.label
            )
            return
        pending.append((when, item))
        if self._event is None:
            self._event = self.loop.schedule_at(
                when, self._flush, priority=self.priority, label=self.label
            )

    def _flush(self) -> None:
        self._event = None
        pending = self._pending
        now = self.loop.now
        deliver = self.deliver
        while pending and pending[0][0] <= now:
            deliver(pending.popleft()[1])
        if pending and self._event is None:
            self._event = self.loop.schedule_at(
                pending[0][0], self._flush, priority=self.priority, label=self.label
            )


class Link:
    """A unidirectional link with propagation delay, bandwidth and a FIFO queue."""

    def __init__(
        self,
        loop: EventLoop,
        name: str,
        latency_s: float,
        bandwidth_bps: float,
        deliver: Callable[[Packet], None],
    ) -> None:
        self.loop = loop
        self.name = name
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self._deliver = deliver
        self._busy_until = 0.0
        self.bytes_sent = 0
        self.packets_sent = 0
        self._arrivals = DeliveryQueue(loop, deliver, priority=5, label=f"link:{name}")

    def transmit(self, packet: Packet) -> float:
        """Enqueue ``packet`` and return its arrival time at the far end."""
        now = self.loop.now
        serialization = packet.total_bytes() * 8.0 / self.bandwidth_bps
        start = max(now, self._busy_until)
        finish = start + serialization
        self._busy_until = finish
        arrival = finish + self.latency_s
        self.bytes_sent += packet.total_bytes()
        self.packets_sent += 1
        self._arrivals.push(arrival, packet)
        return arrival

    @property
    def queue_delay(self) -> float:
        """Current backlog of the link in seconds."""
        return max(0.0, self._busy_until - self.loop.now)

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` spent transmitting."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, (self.bytes_sent * 8.0 / self.bandwidth_bps) / elapsed_s)


class NetworkInterface:
    """Endpoint attached to a host or switch; owns the outgoing links."""

    def __init__(self, owner: "NetworkElement") -> None:
        self.owner = owner
        self.links: Dict[str, Link] = {}

    def connect(self, link: Link, neighbor: str) -> None:
        self.links[neighbor] = link


class NetworkElement:
    """Base class for hosts and switches."""

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.name = name
        self.interface = NetworkInterface(self)

    def receive(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class Switch(NetworkElement):
    """A store-and-forward switch with negligible internal processing delay.

    The switch forwards along the precomputed shortest path.  Switch
    forwarding delay is folded into link latencies, which matches how the
    paper reports topology latencies (host-to-host RTTs).
    """

    def __init__(self, network: "Network", name: str, forwarding_delay_s: float = 0.0) -> None:
        super().__init__(network, name)
        self.forwarding_delay_s = forwarding_delay_s
        self.packets_forwarded = 0

    def receive(self, packet: Packet) -> None:
        self.packets_forwarded += 1
        packet.hops += 1
        next_hop = self.network.next_hop(self.name, packet.dst)
        link = self.interface.links[next_hop]
        if self.forwarding_delay_s:
            self.network.loop.schedule(
                self.forwarding_delay_s, lambda: link.transmit(packet), priority=5, label=f"fwd:{self.name}"
            )
        else:
            link.transmit(packet)


class Host(NetworkElement):
    """A simulated machine.

    Incoming packets are serviced serially through a single CPU queue and
    then handed to the registered message handler.  Outgoing messages go
    through :meth:`send`, which consults the network routing table.
    """

    def __init__(self, network: "Network", name: str, cpu: Optional[CpuModel] = None) -> None:
        super().__init__(network, name)
        self.cpu = cpu or CpuModel()
        self._handler: Optional[Callable[[str, Any], None]] = None
        self._cpu_busy_until = 0.0
        self.messages_received = 0
        self.messages_sent = 0
        self.bytes_received = 0
        self.rack: Optional[str] = None
        self.datacenter: Optional[str] = None
        self.failed = False
        loop = network.loop
        self._rx_queue = DeliveryQueue(loop, self._dispatch, priority=8, label=f"cpu:{name}")
        self._tx_queue = DeliveryQueue(loop, self._inject, priority=9, label=f"send:{name}")

    # ------------------------------------------------------------------
    def set_handler(self, handler: Callable[[str, Any], None]) -> None:
        """Register the callback invoked as ``handler(sender, payload)``."""
        self._handler = handler

    def send(self, dst: str, payload: Any, size_bytes: int) -> None:
        """Send ``payload`` to host ``dst``.

        The send is charged to this host's CPU queue first (serialization /
        syscall cost), then handed to the network when the CPU gets to it.
        """
        if self.failed:
            return
        self.messages_sent += 1
        probe = Packet(src=self.name, dst=dst, payload=payload, size_bytes=size_bytes)
        now = self.network.loop.now
        start = max(now, self._cpu_busy_until)
        finish = start + self.cpu.send_time(probe)
        self._cpu_busy_until = finish
        self._tx_queue.push(finish, (dst, payload, size_bytes))

    def _inject(self, pending_send: Tuple[str, Any, int]) -> None:
        dst, payload, size_bytes = pending_send
        self.network.send(self.name, dst, payload, size_bytes)

    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        if self.failed:
            return
        now = self.network.loop.now
        start = max(now, self._cpu_busy_until)
        finish = start + self.cpu.service_time(packet)
        self._cpu_busy_until = finish
        self._rx_queue.push(finish, packet)

    def _dispatch(self, packet: Packet) -> None:
        if self.failed:
            return
        self.messages_received += 1
        self.bytes_received += packet.total_bytes()
        if self._handler is not None:
            self._handler(packet.src, packet.payload)

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash-stop the host: drop all future traffic and processing."""
        self.failed = True

    def recover(self) -> None:
        """Bring a crashed host back (protocol-level rejoin is separate)."""
        self.failed = False

    def cpu_utilization(self, elapsed_s: float) -> float:
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self._cpu_busy_until / elapsed_s) if self._cpu_busy_until else 0.0


class Network:
    """The set of hosts, switches and links plus routing.

    Links are added with :meth:`add_link` (which creates one unidirectional
    :class:`Link` per direction).  Routing tables are computed lazily with
    BFS weighted by hop count; topologies built by
    :mod:`repro.sim.topology` are trees so shortest paths are unique.
    """

    def __init__(self, loop: EventLoop) -> None:
        self.loop = loop
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, List[str]] = {}
        self._routes: Dict[str, Dict[str, str]] = {}
        self._packet_ids = itertools.count(1)
        self._routes_dirty = True
        self.local_loopback_latency_s = 5e-6
        self.dropped_packets = 0
        self._loopback_queues: Dict[str, DeliveryQueue] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_host(self, name: str, cpu: Optional[CpuModel] = None) -> Host:
        if name in self.hosts or name in self.switches:
            raise SimulationError(f"duplicate network element {name!r}")
        host = Host(self, name, cpu=cpu)
        self.hosts[name] = host
        self._adjacency.setdefault(name, [])
        self._routes_dirty = True
        return host

    def add_switch(self, name: str, forwarding_delay_s: float = 0.0) -> Switch:
        if name in self.hosts or name in self.switches:
            raise SimulationError(f"duplicate network element {name!r}")
        switch = Switch(self, name, forwarding_delay_s)
        self.switches[name] = switch
        self._adjacency.setdefault(name, [])
        self._routes_dirty = True
        return switch

    def element(self, name: str) -> NetworkElement:
        if name in self.hosts:
            return self.hosts[name]
        if name in self.switches:
            return self.switches[name]
        raise KeyError(name)

    def add_link(self, a: str, b: str, latency_s: float, bandwidth_bps: float) -> None:
        """Create a bidirectional link between elements ``a`` and ``b``."""
        element_a = self.element(a)
        element_b = self.element(b)
        forward = Link(self.loop, f"{a}->{b}", latency_s, bandwidth_bps, element_b.receive)
        backward = Link(self.loop, f"{b}->{a}", latency_s, bandwidth_bps, element_a.receive)
        self.links[(a, b)] = forward
        self.links[(b, a)] = backward
        element_a.interface.connect(forward, b)
        element_b.interface.connect(backward, a)
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)
        self._routes_dirty = True

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _rebuild_routes(self) -> None:
        self._routes = {}
        for source in self._adjacency:
            next_hop: Dict[str, str] = {}
            visited = {source}
            queue = deque([(neighbor, neighbor) for neighbor in self._adjacency[source]])
            for neighbor, _ in queue:
                visited.add(neighbor)
            while queue:
                node, first = queue.popleft()
                next_hop[node] = first
                for neighbor in self._adjacency[node]:
                    if neighbor not in visited:
                        visited.add(neighbor)
                        queue.append((neighbor, first))
            self._routes[source] = next_hop
        self._routes_dirty = False

    def next_hop(self, src: str, dst: str) -> str:
        if self._routes_dirty:
            self._rebuild_routes()
        try:
            return self._routes[src][dst]
        except KeyError as exc:
            raise SimulationError(f"no route from {src} to {dst}") from exc

    def path(self, src: str, dst: str) -> List[str]:
        """Return the full element path from ``src`` to ``dst`` (exclusive of src)."""
        if self._routes_dirty:
            self._rebuild_routes()
        path = []
        current = src
        guard = 0
        while current != dst:
            current = self._routes[current][dst]
            path.append(current)
            guard += 1
            if guard > len(self._adjacency) + 1:
                raise SimulationError(f"routing loop from {src} to {dst}")
        return path

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: Any, size_bytes: int) -> None:
        """Inject a packet from host ``src`` to host ``dst``."""
        if src not in self.hosts or dst not in self.hosts:
            raise SimulationError(f"send requires host endpoints ({src} -> {dst})")
        if self.hosts[dst].failed:
            self.dropped_packets += 1
            return
        packet = Packet(
            src=src,
            dst=dst,
            payload=payload,
            size_bytes=size_bytes,
            packet_id=next(self._packet_ids),
            sent_at=self.loop.now,
        )
        if src == dst:
            queue = self._loopback_queues.get(dst)
            if queue is None:
                queue = self._loopback_queues[dst] = DeliveryQueue(
                    self.loop, self.hosts[dst].receive, priority=5, label=f"loopback:{dst}"
                )
            queue.push(self.loop.now + self.local_loopback_latency_s, packet)
            return
        next_element = self.next_hop(src, dst)
        link = self.hosts[src].interface.links[next_element]
        link.transmit(packet)

    # ------------------------------------------------------------------
    # Introspection helpers used by benchmarks
    # ------------------------------------------------------------------
    def total_bytes_on(self, link_pairs: Iterable[Tuple[str, str]]) -> int:
        return sum(self.links[pair].bytes_sent for pair in link_pairs if pair in self.links)

    def link(self, a: str, b: str) -> Link:
        return self.links[(a, b)]
