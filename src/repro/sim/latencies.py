"""Inter-datacenter latency matrix from Table 1 of the Canopus paper.

The paper reports one-way latencies in milliseconds between the seven EC2
regions used in the multi-datacenter evaluation (§8.2):

==  =======================
IR  Ireland
CA  California (N. California)
VA  Virginia
TK  Tokyo
OR  Oregon
SY  Sydney
FF  Frankfurt
==  =======================

The diagonal entries are the intra-datacenter latencies the paper lists
(0.13–0.26 ms).  The matrix is symmetric; the paper only prints the lower
triangle, which we mirror here.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "EC2_REGIONS",
    "EC2_LATENCIES_MS",
    "latency_ms",
    "latency_s",
    "regions_for_count",
    "max_pairwise_latency_ms",
]

#: Region codes in the order used by Table 1.
EC2_REGIONS: List[str] = ["IR", "CA", "VA", "TK", "OR", "SY", "FF"]

#: Lower-triangular entries of Table 1 (milliseconds, one-way as reported).
_TABLE1_LOWER: Dict[Tuple[str, str], float] = {
    ("IR", "IR"): 0.2,
    ("CA", "IR"): 133.0,
    ("CA", "CA"): 0.2,
    ("VA", "IR"): 66.0,
    ("VA", "CA"): 60.0,
    ("VA", "VA"): 0.25,
    ("TK", "IR"): 243.0,
    ("TK", "CA"): 113.0,
    ("TK", "VA"): 145.0,
    ("TK", "TK"): 0.13,
    ("OR", "IR"): 154.0,
    ("OR", "CA"): 20.0,
    ("OR", "VA"): 80.0,
    ("OR", "TK"): 100.0,
    ("OR", "OR"): 0.26,
    ("SY", "IR"): 295.0,
    ("SY", "CA"): 168.0,
    ("SY", "VA"): 226.0,
    ("SY", "TK"): 103.0,
    ("SY", "OR"): 161.0,
    ("SY", "SY"): 0.2,
    ("FF", "IR"): 22.0,
    ("FF", "CA"): 145.0,
    ("FF", "VA"): 89.0,
    ("FF", "TK"): 226.0,
    ("FF", "OR"): 156.0,
    ("FF", "SY"): 322.0,
    ("FF", "FF"): 0.23,
}


def _build_full_matrix() -> Dict[str, Dict[str, float]]:
    matrix: Dict[str, Dict[str, float]] = {r: {} for r in EC2_REGIONS}
    for (a, b), value in _TABLE1_LOWER.items():
        matrix[a][b] = value
        matrix[b][a] = value
    return matrix


#: Full symmetric latency matrix, ``EC2_LATENCIES_MS[a][b]`` in milliseconds.
EC2_LATENCIES_MS: Dict[str, Dict[str, float]] = _build_full_matrix()


def latency_ms(a: str, b: str) -> float:
    """Latency between regions ``a`` and ``b`` in milliseconds."""
    return EC2_LATENCIES_MS[a][b]


def latency_s(a: str, b: str) -> float:
    """Latency between regions ``a`` and ``b`` in seconds."""
    return EC2_LATENCIES_MS[a][b] / 1000.0


def regions_for_count(count: int) -> List[str]:
    """Region subsets used for the 3-, 5-, and 7-datacenter experiments.

    The paper does not list which regions form the 3- and 5-DC subsets, so
    we take prefixes of the Table 1 ordering, which mixes trans-Atlantic and
    trans-Pacific links the same way the full set does.
    """
    if not 1 <= count <= len(EC2_REGIONS):
        raise ValueError(f"count must be between 1 and {len(EC2_REGIONS)}, got {count}")
    return EC2_REGIONS[:count]


def max_pairwise_latency_ms(regions: List[str]) -> float:
    """Largest one-way latency among ``regions`` (drives Canopus cycle time)."""
    worst = 0.0
    for a in regions:
        for b in regions:
            if a != b:
                worst = max(worst, EC2_LATENCIES_MS[a][b])
    return worst
