"""Deterministic discrete-event simulation engine.

The engine is a hierarchical timer wheel (calendar queue).  Near-future
events land in fixed-width time buckets; far-future events wait in an
overflow heap that cascades into the wheel as the clock advances.  Sim
time is already discretized by link serialization and CPU service times,
so bucket occupancy is high and most operations are O(1) list appends
instead of O(log n) heap churn.  Determinism is guaranteed by:

* a single seeded :class:`random.Random` instance owned by the simulator,
* a monotonically increasing sequence number that breaks ties between
  events scheduled for the same instant, and
* the absence of any wall-clock reads.

Execution order is the total order ``(time, priority, seq)`` — exactly
the order the original global binary heap (:class:`HeapEventLoop`, kept
as the differential-testing reference) produces.  The byte-identical-log
contract rests on this: at a fixed seed, both engines run the same
callbacks at the same simulated instants in the same order, so committed
logs and all modelled timings are identical and only wall-clock differs.

Protocol code never touches the engine directly; it talks to a
:class:`repro.runtime.sim_runtime.SimRuntime` which wraps the engine and a
:class:`repro.sim.network.Network`.
"""

from __future__ import annotations

import heapq
import itertools
import random
import zlib
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Event", "EventLoop", "HeapEventLoop", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


#: Overflow-tick sentinel: larger than any reachable tick.
_NO_OVERFLOW = 1 << 62


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events are ordered by ``(time, priority, seq)``.  ``priority`` lets the
    network layer deliver packets before application timers that fire at
    exactly the same instant, which keeps traces intuitive; ``seq`` makes
    ordering total and therefore deterministic.

    The loop's wheel stores ``(time, priority, seq, event)`` tuples rather
    than the events themselves: tuple comparison runs in C and almost
    always resolves on the first float, where the dataclass-generated
    ``__lt__`` builds two tuples per comparison in Python.  The dataclass
    ordering is kept for callers that sort events directly.

    Entries whose fourth element is a bare callable instead of an Event
    are the *fast path* used by :meth:`EventLoop.schedule_fast`: delivery
    queues re-arm themselves roughly once per network event, and those
    wake-ups are never cancelled, never labelled, and never inspected, so
    allocating an Event for each was pure overhead.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    loop: Optional["EventLoop"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self.loop is not None:
                self.loop._live -= 1


class EventLoop:
    """A timer-wheel based discrete event loop.

    The loop exposes :meth:`schedule` / :meth:`schedule_at` for enqueueing
    callbacks and :meth:`run` / :meth:`run_until` / :meth:`step` for
    execution.  Time is a ``float`` in **seconds**.

    Wheel layout: events whose tick (``int(time / bucket_width)``) falls
    within ``nbuckets`` of the wheel's base position are appended to their
    bucket; the bucket becomes the *current heap* (heapified once) when the
    base reaches it, so same-tick events drain in exact ``(time, priority,
    seq)`` order.  Events at or before the base tick are pushed straight
    into the current heap; events beyond the horizon wait in an overflow
    heap and cascade into buckets as the base advances past their tick.
    """

    #: Bucket width in seconds.  Link serialization (~0.1 µs) and CPU
    #: service (~4 µs) discretize the hot path well below this, so busy-run
    #: buckets hold a handful of events each (small per-tick heaps beat one
    #: global heap); 4096 buckets give a 32.8 ms horizon that covers
    #: batching windows and client think times, while heartbeats and long
    #: timeouts cascade in from the overflow heap.
    BUCKET_WIDTH = 8e-6
    NBUCKETS = 4096  # power of two (bucket index is ``tick & mask``)

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        #: Number of non-cancelled events in the wheel, so ``__len__`` is O(1).
        self._live = 0
        #: Real event turns only (one per executed wheel entry).  Unlike
        #: ``_processed`` this is never adjusted by the network layer's
        #: virtual backlog replay, so same-turn coalescing stays stable.
        self._turn = 0
        # Wheel state -------------------------------------------------
        self._width = self.BUCKET_WIDTH
        self._inv_width = 1.0 / self.BUCKET_WIDTH
        self._nbuckets = self.NBUCKETS
        self._mask = self.NBUCKETS - 1
        self._buckets: List[List[tuple]] = [[] for _ in range(self.NBUCKETS)]
        #: Tick currently stored in each (non-empty) bucket slot.  A slot
        #: only ever holds entries of a single tick: inserts that would mix
        #: wheel wraps in one slot go to the overflow heap instead (rare),
        #: so activating a bucket never needs to re-file entries.
        self._slot_tick: List[int] = [-1] * self.NBUCKETS
        #: Heap of entries due at or before the base tick.
        self._cur: List[tuple] = []
        #: Entries beyond the wheel horizon (or wrap-colliding), as a heap.
        self._overflow: List[tuple] = []
        #: Smallest tick in the overflow heap (sentinel when empty), so the
        #: bucket scan's cascade check is one int compare.
        self._ovf_tick = _NO_OVERFLOW
        #: Entries stored in ``_buckets`` (including cancelled ghosts);
        #: lets the scan fast-forward when only overflow remains.
        self._wheel_count = 0
        self._base = 0
        #: Callbacks invoked when :meth:`run_until` reaches its deadline
        #: (the network layer uses this to settle lazily-delivered backlog
        #: so counters match the reference engine at window edges).
        self._quiesce_hooks: List[Callable[[], None]] = []
        #: Deadline of the active :meth:`run_until` window (``inf`` under
        #: :meth:`run`).  Lookahead consumers (the network's switch drains)
        #: cap eager work here so introspectable state at a window edge is
        #: identical to the reference engine's.
        self._deadline = float("inf")

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (useful for budget guards)."""
        return self._processed

    def __len__(self) -> int:
        return self._live

    def add_quiesce_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` whenever :meth:`run_until` reaches its deadline."""
        self._quiesce_hooks.append(hook)

    # ------------------------------------------------------------------
    # Hidden events and virtual accounting
    #
    # The lazy delivery layer (repro.sim.network) elides reference-engine
    # events and replays their work in batches.  Its own helper events —
    # switch drains, idle-CPU wake-ups — have no reference counterpart and
    # must stay invisible to ``len(loop)`` / ``processed_events``, while
    # the *elided* reference events must be mirrored into those counters
    # at replay time.  These two methods are the only sanctioned way to do
    # either; mutating ``_live`` / ``_processed`` from outside this module
    # is flagged by the ``no-engine-counter-poke`` detlint rule.
    # ------------------------------------------------------------------
    def schedule_hidden(self, when: float, callback: Callable[[], None], priority: int = 10) -> None:
        """Schedule a non-cancellable callback invisible to ``len(loop)``.

        The entry executes exactly like a :meth:`schedule_fast` entry but
        is not counted as live; the callback must call
        ``adjust_hidden(1, -1)`` first thing to undo :meth:`step`'s
        per-event accounting (the loop cannot tell a hidden entry apart
        at execution time).
        """
        self.schedule_fast(when, callback, priority)
        self._live -= 1

    def adjust_hidden(self, live: int = 0, processed: int = 0) -> None:
        """Adjust the observable counters on behalf of elided events.

        ``live`` mirrors reference-engine armed entries into ``len(loop)``
        (or, with ``(1, -1)``, restores the decrement/increment a firing
        hidden entry was charged by :meth:`step`); ``processed`` counts
        replayed reference flushes into :attr:`processed_events`.
        """
        self._live += live
        self._processed += processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _insert(self, entry: tuple) -> None:
        tick = int(entry[0] * self._inv_width)
        base = self._base
        if tick <= base:
            heappush(self._cur, entry)
        elif tick - base < self._nbuckets:
            idx = tick & self._mask
            slot = self._buckets[idx]
            if slot:
                if self._slot_tick[idx] == tick:
                    slot.append(entry)
                    self._wheel_count += 1
                else:
                    # Wrap collision: the slot belongs to another tick.
                    heappush(self._overflow, entry)
                    if tick < self._ovf_tick:
                        self._ovf_tick = tick
            else:
                slot.append(entry)
                self._slot_tick[idx] = tick
                self._wheel_count += 1
        else:
            heappush(self._overflow, entry)
            if tick < self._ovf_tick:
                self._ovf_tick = tick

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 10,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        *,
        priority: int = 10,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} before now={self._now}")
        seq = next(self._seq)
        event = Event(
            time=when, priority=priority, seq=seq, callback=callback, label=label, loop=self
        )
        self._insert((when, priority, seq, event))
        self._live += 1
        return event

    def schedule_fast(self, when: float, callback: Callable[[], None], priority: int = 10) -> None:
        """Schedule a non-cancellable callback at absolute time ``when``.

        Skips the :class:`Event` wrapper entirely — the wheel entry carries
        the bare callable.  Meant for the network delivery queues, which
        re-arm once per delivery burst and never cancel; ordering semantics
        ((time, priority, seq)) are identical to :meth:`schedule_at`.
        """
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} before now={self._now}")
        # _insert, inlined: this is the single hottest call in a saturation
        # run (one per delivery-queue re-arm), so it skips the extra frame.
        entry = (when, priority, next(self._seq), callback)
        tick = int(when * self._inv_width)
        base = self._base
        if tick <= base:
            heappush(self._cur, entry)
        elif tick - base < self._nbuckets:
            idx = tick & self._mask
            slot = self._buckets[idx]
            if slot:
                if self._slot_tick[idx] == tick:
                    slot.append(entry)
                    self._wheel_count += 1
                else:
                    heappush(self._overflow, entry)
                    if tick < self._ovf_tick:
                        self._ovf_tick = tick
            else:
                slot.append(entry)
                self._slot_tick[idx] = tick
                self._wheel_count += 1
        else:
            heappush(self._overflow, entry)
            if tick < self._ovf_tick:
                self._ovf_tick = tick
        self._live += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _advance(self) -> Optional[tuple]:
        """Advance the base past empty buckets; return the next entry.

        Called only when the current heap is empty.  Cascades overflow
        entries into the wheel as their ticks come within the horizon, and
        fast-forwards across fully-empty stretches instead of scanning
        them bucket by bucket.
        """
        overflow = self._overflow
        inv_width = self._inv_width
        ovf_tick = self._ovf_tick
        if self._wheel_count == 0:
            if not overflow:
                self._cur = []
                return None
            # Jump straight to the earliest overflow tick.
            self._base = ovf_tick - 1
        buckets = self._buckets
        mask = self._mask
        slot_ticks = self._slot_tick
        base = self._base
        while True:
            base += 1
            current = None
            if ovf_tick <= base:
                # Overflow entries whose tick has come due (beyond the
                # horizon at insert, or wrap-colliding) cascade in now.
                current = []
                while overflow and int(overflow[0][0] * inv_width) <= base:
                    current.append(heappop(overflow))
                ovf_tick = int(overflow[0][0] * inv_width) if overflow else _NO_OVERFLOW
                self._ovf_tick = ovf_tick
            idx = base & mask
            slot = buckets[idx]
            if slot and slot_ticks[idx] == base:
                self._wheel_count -= len(slot)
                if current:
                    current.extend(slot)
                    slot.clear()
                else:
                    current = slot
                    buckets[idx] = []
            if current:
                self._base = base
                if len(current) == 1:
                    entry = current[0]
                    current.clear()
                    self._cur = current
                    return entry
                self._cur = current
                heapify(current)
                return heappop(current)
            if self._wheel_count == 0:
                if not overflow:
                    self._base = base
                    self._cur = []
                    return None
                base = ovf_tick - 1

    def step(self) -> bool:
        """Execute the next pending event.  Returns ``False`` when empty."""
        while True:
            if self._cur:
                entry = heappop(self._cur)
            else:
                entry = self._advance()
                if entry is None:
                    return False
            event = entry[3]
            if event.__class__ is Event:
                if event.cancelled:
                    continue
                # Mark the event consumed so a late cancel() (e.g. a timer
                # callback cancelling its own timer) cannot decrement again.
                event.cancelled = True
                callback = event.callback
            else:
                # schedule_fast entry: the callable itself, never cancelled.
                callback = event
            if entry[0] < self._now:
                raise SimulationError("event heap produced an event in the past")
            self._now = entry[0]
            self._processed += 1
            self._turn += 1
            self._live -= 1
            callback()
            return True

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event wheel is exhausted (or ``max_events``)."""
        self._running = True
        self._deadline = float("inf")
        executed = 0
        try:
            while self._running and self.step():
                executed += 1
                if max_events is not None and executed >= max_events:
                    return
        finally:
            self._running = False

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> None:
        """Run events with timestamps strictly ``<= deadline``.

        On return the clock is advanced to ``deadline`` even if the wheel
        drained earlier, so repeated ``run_until`` calls behave like a
        sequence of measurement windows.
        """
        executed = 0
        self._deadline = deadline
        # Hot loop: local aliases, no step() indirection, Event handling
        # inlined.  ``self._cur`` is re-read after every callback because
        # callbacks schedule new events and _advance replaces the list.
        pop = heappop
        while True:
            cur = self._cur
            if cur:
                entry = pop(cur)
            else:
                entry = self._advance()
                if entry is None:
                    break
            if entry[0] > deadline:
                # Not due yet: put it back (its tick <= the base tick).
                heappush(self._cur, entry)
                break
            event = entry[3]
            if event.__class__ is Event:
                if event.cancelled:
                    continue
                event.cancelled = True
                callback = event.callback
            else:
                callback = event
            when = entry[0]
            if when < self._now:
                raise SimulationError("event heap produced an event in the past")
            self._now = when
            self._processed += 1
            self._turn += 1
            self._live -= 1
            callback()
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if self._now < deadline:
            self._now = deadline
        for hook in self._quiesce_hooks:
            hook()

    def stop(self) -> None:
        """Stop a :meth:`run` in progress after the current event."""
        self._running = False


class HeapEventLoop:
    """The original global-binary-heap event loop.

    Kept as the differential-testing reference for the timer wheel: both
    engines must execute any schedule stream in the identical ``(time,
    priority, seq)`` order.  Not used by :class:`Simulator`.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        self._live = 0
        self._turn = 0
        self._quiesce_hooks: List[Callable[[], None]] = []
        self._deadline = float("inf")

    @property
    def now(self) -> float:
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    def __len__(self) -> int:
        return self._live

    def add_quiesce_hook(self, hook: Callable[[], None]) -> None:
        self._quiesce_hooks.append(hook)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 10,
        label: str = "",
    ) -> Event:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        *,
        priority: int = 10,
        label: str = "",
    ) -> Event:
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} before now={self._now}")
        seq = next(self._seq)
        event = Event(
            time=when, priority=priority, seq=seq, callback=callback, label=label, loop=self
        )
        heapq.heappush(self._heap, (when, priority, seq, event))
        self._live += 1
        return event

    def schedule_fast(self, when: float, callback: Callable[[], None], priority: int = 10) -> None:
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} before now={self._now}")
        heapq.heappush(self._heap, (when, priority, next(self._seq), callback))
        self._live += 1

    def schedule_hidden(
        self, when: float, callback: Callable[[], None], priority: int = 10
    ) -> None:
        self.schedule_fast(when, callback, priority)
        self._live -= 1

    def adjust_hidden(self, live: int = 0, processed: int = 0) -> None:
        self._live += live
        self._processed += processed

    def step(self) -> bool:
        while self._heap:
            entry = heapq.heappop(self._heap)
            event = entry[3]
            if event.__class__ is not Event:
                if entry[0] < self._now:
                    raise SimulationError("event heap produced an event in the past")
                self._now = entry[0]
                self._processed += 1
                self._turn += 1
                self._live -= 1
                event()
                return True
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap produced an event in the past")
            self._now = event.time
            self._processed += 1
            self._turn += 1
            self._live -= 1
            event.cancelled = True
            event.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> None:
        self._running = True
        self._deadline = float("inf")
        executed = 0
        try:
            while self._running and self.step():
                executed += 1
                if max_events is not None and executed >= max_events:
                    return
        finally:
            self._running = False

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> None:
        executed = 0
        self._deadline = deadline
        while self._heap:
            entry = self._heap[0]
            head = entry[3]
            if head.__class__ is Event and head.cancelled:
                heapq.heappop(self._heap)
                continue
            if entry[0] > deadline:
                break
            self.step()
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if self._now < deadline:
            self._now = deadline
        for hook in self._quiesce_hooks:
            hook()

    def stop(self) -> None:
        self._running = False


class Simulator:
    """Top-level container binding an event loop, RNG and named components.

    A :class:`Simulator` is the unit of reproducibility: constructing two
    simulators with the same seed and driving them with the same inputs
    yields byte-identical traces.
    """

    def __init__(self, seed: int = 0) -> None:
        self.loop = EventLoop()
        self.seed = seed
        self.rng = random.Random(seed)
        self.components: Dict[str, Any] = {}

    # Convenience passthroughs -----------------------------------------
    @property
    def now(self) -> float:
        return self.loop.now

    def schedule(self, delay: float, callback: Callable[[], None], **kwargs: Any) -> Event:
        return self.loop.schedule(delay, callback, **kwargs)

    def run(self, max_events: Optional[int] = None) -> None:
        self.loop.run(max_events=max_events)

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> None:
        self.loop.run_until(deadline, max_events=max_events)

    # Component registry -------------------------------------------------
    def register(self, name: str, component: Any) -> Any:
        """Register a named component (host, protocol node, collector...)."""
        if name in self.components:
            raise SimulationError(f"component {name!r} already registered")
        self.components[name] = component
        return component

    def get(self, name: str) -> Any:
        return self.components[name]

    def fork_rng(self, label: str) -> random.Random:
        """Derive an independent, deterministic RNG stream for ``label``.

        The label is folded in with CRC-32 rather than builtin ``hash``:
        string hashes are salted per process, so seeding from them would
        silently make "deterministic" streams differ between runs.
        """
        derived_seed = (self.seed * 1_000_003 + zlib.crc32(label.encode("utf-8"))) & 0x7FFFFFFF
        return random.Random(derived_seed)
