"""Deterministic discrete-event simulation engine.

The engine is a small, dependency-free event loop built around a binary
heap of timestamped events.  Determinism is guaranteed by:

* a single seeded :class:`random.Random` instance owned by the simulator,
* a monotonically increasing sequence number that breaks ties between
  events scheduled for the same instant, and
* the absence of any wall-clock reads.

Protocol code never touches the engine directly; it talks to a
:class:`repro.runtime.sim_runtime.SimRuntime` which wraps the engine and a
:class:`repro.sim.network.Network`.
"""

from __future__ import annotations

import heapq
import itertools
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Event", "EventLoop", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events are ordered by ``(time, priority, seq)``.  ``priority`` lets the
    network layer deliver packets before application timers that fire at
    exactly the same instant, which keeps traces intuitive; ``seq`` makes
    ordering total and therefore deterministic.

    The loop's heap stores ``(time, priority, seq, event)`` tuples rather
    than the events themselves: tuple comparison runs in C and almost
    always resolves on the first float, where the dataclass-generated
    ``__lt__`` builds two tuples per comparison in Python.  The dataclass
    ordering is kept for callers that sort events directly.

    Heap entries whose fourth element is a bare callable instead of an
    Event are the *fast path* used by :meth:`EventLoop.schedule_fast`:
    delivery queues re-arm themselves roughly once per network event, and
    those wake-ups are never cancelled, never labelled, and never
    inspected, so allocating an Event for each was pure overhead.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    loop: Optional["EventLoop"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self.loop is not None:
                self.loop._live -= 1


class EventLoop:
    """A priority-queue based discrete event loop.

    The loop exposes :meth:`schedule` / :meth:`schedule_at` for enqueueing
    callbacks and :meth:`run` / :meth:`run_until` / :meth:`step` for
    execution.  Time is a ``float`` in **seconds**.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        #: Number of non-cancelled events in the heap, so ``__len__`` is O(1).
        self._live = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (useful for budget guards)."""
        return self._processed

    def __len__(self) -> int:
        return self._live

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 10,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        *,
        priority: int = 10,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} before now={self._now}")
        seq = next(self._seq)
        event = Event(
            time=when, priority=priority, seq=seq, callback=callback, label=label, loop=self
        )
        heapq.heappush(self._heap, (when, priority, seq, event))
        self._live += 1
        return event

    def schedule_fast(self, when: float, callback: Callable[[], None], priority: int = 10) -> None:
        """Schedule a non-cancellable callback at absolute time ``when``.

        Skips the :class:`Event` wrapper entirely — the heap entry carries
        the bare callable.  Meant for the network delivery queues, which
        re-arm once per delivery burst and never cancel; ordering semantics
        ((time, priority, seq)) are identical to :meth:`schedule_at`.
        """
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} before now={self._now}")
        heapq.heappush(self._heap, (when, priority, next(self._seq), callback))
        self._live += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.  Returns ``False`` when empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            event = entry[3]
            if event.__class__ is not Event:
                # schedule_fast entry: the callable itself, never cancelled.
                if entry[0] < self._now:
                    raise SimulationError("event heap produced an event in the past")
                self._now = entry[0]
                self._processed += 1
                self._live -= 1
                event()
                return True
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap produced an event in the past")
            self._now = event.time
            self._processed += 1
            self._live -= 1
            # Mark the event consumed so a late cancel() (e.g. a timer
            # callback cancelling its own timer) cannot decrement again.
            event.cancelled = True
            event.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event heap is exhausted (or ``max_events``)."""
        self._running = True
        executed = 0
        try:
            while self._running and self.step():
                executed += 1
                if max_events is not None and executed >= max_events:
                    return
        finally:
            self._running = False

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> None:
        """Run events with timestamps strictly ``<= deadline``.

        On return the clock is advanced to ``deadline`` even if the heap
        drained earlier, so repeated ``run_until`` calls behave like a
        sequence of measurement windows.
        """
        executed = 0
        while self._heap:
            entry = self._heap[0]
            head = entry[3]
            if head.__class__ is Event and head.cancelled:
                heapq.heappop(self._heap)
                continue
            if entry[0] > deadline:
                break
            self.step()
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if self._now < deadline:
            self._now = deadline

    def stop(self) -> None:
        """Stop a :meth:`run` in progress after the current event."""
        self._running = False


class Simulator:
    """Top-level container binding an event loop, RNG and named components.

    A :class:`Simulator` is the unit of reproducibility: constructing two
    simulators with the same seed and driving them with the same inputs
    yields byte-identical traces.
    """

    def __init__(self, seed: int = 0) -> None:
        self.loop = EventLoop()
        self.seed = seed
        self.rng = random.Random(seed)
        self.components: Dict[str, Any] = {}

    # Convenience passthroughs -----------------------------------------
    @property
    def now(self) -> float:
        return self.loop.now

    def schedule(self, delay: float, callback: Callable[[], None], **kwargs: Any) -> Event:
        return self.loop.schedule(delay, callback, **kwargs)

    def run(self, max_events: Optional[int] = None) -> None:
        self.loop.run(max_events=max_events)

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> None:
        self.loop.run_until(deadline, max_events=max_events)

    # Component registry -------------------------------------------------
    def register(self, name: str, component: Any) -> Any:
        """Register a named component (host, protocol node, collector...)."""
        if name in self.components:
            raise SimulationError(f"component {name!r} already registered")
        self.components[name] = component
        return component

    def get(self, name: str) -> Any:
        return self.components[name]

    def fork_rng(self, label: str) -> random.Random:
        """Derive an independent, deterministic RNG stream for ``label``.

        The label is folded in with CRC-32 rather than builtin ``hash``:
        string hashes are salted per process, so seeding from them would
        silently make "deterministic" streams differ between runs.
        """
        derived_seed = (self.seed * 1_000_003 + zlib.crc32(label.encode("utf-8"))) & 0x7FFFFFFF
        return random.Random(derived_seed)
