"""Deterministic discrete-event simulation substrate.

This package provides the event engine (:mod:`repro.sim.engine`), the
network model (:mod:`repro.sim.network`), topology builders matching the
deployments in the Canopus paper (:mod:`repro.sim.topology`), and the
inter-datacenter latency matrix from Table 1 of the paper
(:mod:`repro.sim.latencies`).
"""

from repro.sim.engine import Event, EventLoop, Simulator
from repro.sim.network import Host, Link, Network, Packet, Switch
from repro.sim.topology import (
    EC2_LATENCIES_MS,
    Datacenter,
    Rack,
    Topology,
    build_multi_datacenter,
    build_single_datacenter,
)

__all__ = [
    "Event",
    "EventLoop",
    "Simulator",
    "Host",
    "Link",
    "Network",
    "Packet",
    "Switch",
    "EC2_LATENCIES_MS",
    "Datacenter",
    "Rack",
    "Topology",
    "build_multi_datacenter",
    "build_single_datacenter",
]
