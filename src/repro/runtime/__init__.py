"""Runtime abstraction: the boundary between protocol logic and transport.

Protocol nodes (Canopus, Raft, EPaxos, Zab) are written against the small
:class:`~repro.runtime.base.Runtime` interface so that the identical
protocol code runs both on the deterministic discrete-event simulator
(:class:`~repro.runtime.sim_runtime.SimRuntime`) and on an in-process
asyncio transport (:class:`~repro.runtime.asyncio_runtime.AsyncioRuntime`).
"""

from repro.runtime.base import Runtime, Timer
from repro.runtime.sim_runtime import SimRuntime
from repro.runtime.asyncio_runtime import AsyncioCluster, AsyncioRuntime

__all__ = ["Runtime", "Timer", "SimRuntime", "AsyncioRuntime", "AsyncioCluster"]
