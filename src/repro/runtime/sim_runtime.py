"""Runtime backed by the discrete-event simulator."""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.runtime.base import Runtime, Timer, estimate_size
from repro.sim.engine import Simulator
from repro.sim.network import Host, Network

__all__ = ["SimRuntime", "estimate_size"]


class SimRuntime(Runtime):
    """Adapts one simulated :class:`~repro.sim.network.Host` to the Runtime API."""

    def __init__(self, simulator: Simulator, network: Network, host: Host) -> None:
        self.simulator = simulator
        self.network = network
        self.host = host
        self.node_id = host.name
        self.rng: random.Random = simulator.fork_rng(host.name)
        host.set_handler(self._deliver)
        self._handler: Optional[Callable[[str, Any], None]] = None

    # ------------------------------------------------------------------
    def now(self) -> float:
        return self.simulator.now

    def send(self, dst: str, message: Any, size_bytes: Optional[int] = None) -> None:
        size = size_bytes if size_bytes is not None else estimate_size(message)
        self.host.send(dst, message, size)

    def multicast(self, dsts, message: Any, size_bytes: Optional[int] = None) -> None:
        size = size_bytes if size_bytes is not None else estimate_size(message)
        self.host.multicast(dsts, message, size)

    def after(self, delay: float, callback: Callable[[], None]) -> Timer:
        event = self.simulator.loop.schedule(delay, callback, label=f"timer:{self.node_id}")
        return Timer(event.cancel)

    def set_handler(self, handler: Callable[[str, Any], None]) -> None:
        self._handler = handler

    # ------------------------------------------------------------------
    def _deliver(self, sender: str, message: Any) -> None:
        if self._handler is not None:
            self._handler(sender, message)
