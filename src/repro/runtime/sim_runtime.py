"""Runtime backed by the discrete-event simulator."""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.runtime.base import Runtime, Timer, Transport, estimate_size
from repro.sim.engine import Simulator
from repro.sim.network import Host, Network

__all__ = ["SimRuntime", "estimate_size"]


class _SimTransport(Transport):
    """Transport facade bound straight to the simulated host.

    Skips the generic ``Transport -> Runtime -> Host`` hop on the
    per-message egress path: counters are identical, the host primitives
    are called directly (one saved Python frame per send/broadcast).
    """

    __slots__ = ("host",)

    def __init__(self, runtime: "SimRuntime") -> None:
        super().__init__(runtime)
        self.host = runtime.host

    def send(self, dst: str, message: Any, size_bytes: Optional[int] = None) -> None:
        size = size_bytes if size_bytes is not None else estimate_size(message)
        self.messages_sent += 1
        self.bytes_sent += size
        self.host.send(dst, message, size)

    def broadcast(self, destinations: Any, message: Any, size_bytes: Optional[int] = None) -> None:
        size = size_bytes if size_bytes is not None else estimate_size(message)
        if type(destinations) is tuple:
            dsts = self._groups.get(destinations)
            if dsts is None:
                node_id = self.runtime.node_id
                dsts = [dst for dst in destinations if dst != node_id]
                self._groups[destinations] = dsts
        else:
            node_id = self.runtime.node_id
            dsts = [dst for dst in destinations if dst != node_id]
        if not dsts:
            return
        count = len(dsts)
        self.messages_sent += count
        self.bytes_sent += size * count
        self.host.multicast(dsts, message, size)


class SimRuntime(Runtime):
    """Adapts one simulated :class:`~repro.sim.network.Host` to the Runtime API."""

    def __init__(self, simulator: Simulator, network: Network, host: Host) -> None:
        self.simulator = simulator
        self.network = network
        self.host = host
        self.node_id = host.name
        self.rng: random.Random = simulator.fork_rng(host.name)
        host.set_handler(self._deliver)
        self._handler: Optional[Callable[[str, Any], None]] = None
        self._timer_label = f"timer:{host.name}"
        self._transport = _SimTransport(self)

    # ------------------------------------------------------------------
    def now(self) -> float:
        return self.simulator.now

    def send(self, dst: str, message: Any, size_bytes: Optional[int] = None) -> None:
        size = size_bytes if size_bytes is not None else estimate_size(message)
        self.host.send(dst, message, size)

    def multicast(self, dsts, message: Any, size_bytes: Optional[int] = None) -> None:
        size = size_bytes if size_bytes is not None else estimate_size(message)
        self.host.multicast(dsts, message, size)

    def after(self, delay: float, callback: Callable[[], None]) -> Timer:
        event = self.simulator.loop.schedule(delay, callback, label=self._timer_label)
        return Timer(event.cancel)

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        # Same (time, priority, seq) ordering as `after` (priority 10,
        # shared seq counter) without the Event/Timer allocation.
        self.simulator.loop.schedule_fast(when, callback, 10)

    def set_handler(self, handler: Callable[[str, Any], None]) -> None:
        # Registered directly on the host: delivery then runs
        # handler(sender, payload) with no runtime-level indirection
        # (~one saved Python frame per delivered message).
        self._handler = handler
        self.host.set_handler(handler)

    def attach_tracer(self, tracer: Any) -> None:
        """Hook the sim delivery plane: hops are recorded at the network
        layer (packet creation + rx dispatch), not the transport facade,
        so the trace sees real queueing/propagation times."""
        self.host._obs = tracer
        self.network._obs = tracer

    # ------------------------------------------------------------------
    def _deliver(self, sender: str, message: Any) -> None:
        if self._handler is not None:
            self._handler(sender, message)
