"""In-process asyncio transport for running protocol nodes "for real".

The :class:`AsyncioCluster` hosts a set of named endpoints in one asyncio
event loop and delivers messages between them through per-node queues with
optional configurable latency.  It exists for two reasons:

* The same protocol state machines that the simulator measures can be
  executed on genuinely concurrent asyncio tasks, which exercises the code
  against real interleavings (the paper's prototype runs over TCP; an
  in-process transport preserves the asynchrony while staying hermetic).
* Examples and integration tests can run without the simulator.

Latency injection uses ``asyncio.sleep`` so message reordering between
pairs of nodes with different latencies happens naturally.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.base import Runtime, Timer

__all__ = ["AsyncioRuntime", "AsyncioCluster", "AsyncioTopology"]


class AsyncioRuntime(Runtime):
    """Runtime bound to one endpoint of an :class:`AsyncioCluster`."""

    def __init__(self, cluster: "AsyncioCluster", node_id: str, seed: int) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.rng = random.Random(seed)
        self._handler: Optional[Callable[[str, Any], None]] = None
        # The asyncio substrate IS the wall-clock runtime: Runtime.now()
        # is defined as elapsed host time here (real concurrency, no
        # modelled clock), so reading the host clock is the contract.
        self._start = time.monotonic()  # detlint: disable=no-wallclock

    def now(self) -> float:
        return time.monotonic() - self._start  # detlint: disable=no-wallclock

    def send(self, dst: str, message: Any, size_bytes: Optional[int] = None) -> None:
        self.cluster.post(self.node_id, dst, message)

    def multicast(self, dsts: Sequence[str], message: Any, size_bytes: Optional[int] = None) -> None:
        self.cluster.post_group(self.node_id, dsts, message)

    def after(self, delay: float, callback: Callable[[], None]) -> Timer:
        handle = self.cluster.loop.call_later(delay, callback)
        return Timer(handle.cancel)

    def set_handler(self, handler: Callable[[str, Any], None]) -> None:
        self._handler = handler

    def deliver(self, sender: str, message: Any) -> None:
        if self._handler is not None:
            self._handler(sender, message)


class AsyncioCluster:
    """A set of asyncio-connected runtimes with injectable pairwise latency."""

    def __init__(self, seed: int = 0, default_latency_s: float = 0.0005) -> None:
        self.seed = seed
        self.default_latency_s = default_latency_s
        self.loop = asyncio.new_event_loop()
        self.runtimes: Dict[str, AsyncioRuntime] = {}
        self.latencies: Dict[Tuple[str, str], float] = {}
        self.messages_delivered = 0
        self._pending = 0
        self._idle_event = asyncio.Event()

    # ------------------------------------------------------------------
    def add_node(self, node_id: str) -> AsyncioRuntime:
        if node_id in self.runtimes:
            raise ValueError(f"duplicate node {node_id!r}")
        runtime = AsyncioRuntime(self, node_id, seed=self.seed * 31 + len(self.runtimes))
        self.runtimes[node_id] = runtime
        return runtime

    def set_latency(self, a: str, b: str, latency_s: float) -> None:
        """Set symmetric delivery latency between nodes ``a`` and ``b``."""
        self.latencies[(a, b)] = latency_s
        self.latencies[(b, a)] = latency_s

    def latency(self, a: str, b: str) -> float:
        return self.latencies.get((a, b), self.default_latency_s)

    # ------------------------------------------------------------------
    def post(self, src: str, dst: str, message: Any) -> None:
        """Queue delivery of ``message`` from ``src`` to ``dst``."""
        if dst not in self.runtimes:
            return
        delay = self.latency(src, dst)
        self._pending += 1
        self._idle_event.clear()

        async def _deliver() -> None:
            try:
                if delay > 0:
                    await asyncio.sleep(delay)
                self.runtimes[dst].deliver(src, message)
                self.messages_delivered += 1
            finally:
                self._pending -= 1
                if self._pending == 0:
                    self._idle_event.set()

        self.loop.create_task(_deliver())

    def post_group(self, src: str, dsts: Sequence[str], message: Any) -> None:
        """Deliver one logical ``message`` to a destination group concurrently.

        This is the asyncio substrate's fan-out primitive behind
        :meth:`AsyncioRuntime.multicast`: one task drives the whole group
        through ``asyncio.gather``, so per-destination latencies elapse
        concurrently instead of the base class's sequential per-destination
        ``send`` loop creating one task per destination.  Delivery per
        destination is identical to :meth:`post` (same latency lookup, same
        pending accounting), only the task structure differs.
        """
        targets = [dst for dst in dsts if dst in self.runtimes]
        if not targets:
            return
        self._pending += len(targets)
        self._idle_event.clear()

        async def _deliver_one(dst: str) -> None:
            try:
                delay = self.latency(src, dst)
                if delay > 0:
                    await asyncio.sleep(delay)
                self.runtimes[dst].deliver(src, message)
                self.messages_delivered += 1
            finally:
                self._pending -= 1
                if self._pending == 0:
                    self._idle_event.set()

        async def _fan_out() -> None:
            await asyncio.gather(*(_deliver_one(dst) for dst in targets))

        self.loop.create_task(_fan_out())

    # ------------------------------------------------------------------
    def run(self, coro: Any) -> Any:
        """Run ``coro`` to completion on the cluster's loop."""
        asyncio.set_event_loop(self.loop)
        return self.loop.run_until_complete(coro)

    def run_for(self, duration_s: float) -> None:
        """Run the cluster for ``duration_s`` of wall-clock time."""
        self.run(asyncio.sleep(duration_s))

    async def settle(self, timeout_s: float = 5.0, quiescent_rounds: int = 3) -> None:
        """Wait until no messages are in flight for a few scheduler turns."""
        # Wall-clock by design: settle() bounds a *real* asyncio scheduler,
        # not simulated time.
        deadline = time.monotonic() + timeout_s  # detlint: disable=no-wallclock
        quiet = 0
        while time.monotonic() < deadline:  # detlint: disable=no-wallclock
            if self._pending == 0:
                quiet += 1
                if quiet >= quiescent_rounds:
                    return
            else:
                quiet = 0
            await asyncio.sleep(0.002)

    def close(self) -> None:
        pending = asyncio.all_tasks(self.loop) if self.loop.is_running() else set()
        # Cancellation is order-insensitive (no task observes another's
        # cancellation order) and this substrate is non-deterministic by
        # design, so set order is harmless here.
        for task in pending:  # detlint: disable=no-unordered-iteration
            task.cancel()
        self.loop.close()


class AsyncioTopology:
    """A topology-shaped view over an :class:`AsyncioCluster`.

    Registry protocol factories only touch a topology through three hooks —
    ``server_hosts``, ``servers_by_rack()`` and ``make_runtime(node_id)`` —
    so this shim is enough to build *any* registered protocol on the asyncio
    substrate::

        topology = AsyncioTopology({"rack-a": ["a1", "a2"], "rack-b": ["b1", "b2"]})
        protocol = build_protocol("epaxos", topology)
        topology.cluster.run_for(1.0)

    There are no client hosts: asyncio deployments submit requests directly
    through ``protocol.submit`` (the conformance suite's intake path).
    """

    kind = "asyncio"

    def __init__(self, rack_map: Dict[str, Sequence[str]], seed: int = 0,
                 cluster: Optional[AsyncioCluster] = None) -> None:
        self.rack_map: Dict[str, List[str]] = {
            name: list(members) for name, members in sorted(rack_map.items())
        }
        self.cluster = cluster or AsyncioCluster(seed=seed)
        self.client_hosts: List[str] = []

    @property
    def server_hosts(self) -> List[str]:
        return [member for members in self.rack_map.values() for member in members]

    def servers_by_rack(self) -> Dict[str, List[str]]:
        return {name: list(members) for name, members in self.rack_map.items()}

    def make_runtime(self, node_id: str) -> AsyncioRuntime:
        return self.cluster.add_node(node_id)
