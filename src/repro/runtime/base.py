"""The :class:`Runtime` interface protocol nodes are written against.

A runtime provides four things:

* a clock (:meth:`Runtime.now`),
* message transmission (through the :class:`Transport` facade),
* one-shot timers (:meth:`Runtime.after`), and
* a deterministic random stream (:attr:`Runtime.rng`).

Protocol nodes register a message handler with :meth:`Runtime.set_handler`
and from then on are purely reactive: every state transition happens inside
a message delivery or a timer callback.

All protocol egress goes through :attr:`Runtime.transport` rather than
calling :meth:`Runtime.send` directly.  The facade gives every substrate
(simulator, asyncio, a future kernel-bypass transport) one place to apply
wire-size estimation, per-node traffic accounting, and batching — the
simulated network coalesces same-destination deliveries into single
scheduled events, and because every protocol routes through the same
facade, that batching applies uniformly.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = ["Runtime", "Timer", "Transport", "estimate_size"]


def estimate_size(message: Any) -> int:
    """Best-effort estimate of a message's wire size in bytes.

    Messages that care about their size (all protocol messages in this
    repository) expose a ``wire_size()`` method; anything else is charged a
    small fixed cost.
    """
    wire_size = getattr(message, "wire_size", None)
    if callable(wire_size):
        return int(wire_size())
    if isinstance(message, (bytes, bytearray)):
        return len(message)
    if isinstance(message, str):
        return len(message.encode("utf-8"))
    return 64


class Timer:
    """Handle for a scheduled callback; supports cancellation."""

    def __init__(self, cancel: Callable[[], None]) -> None:
        self._cancel = cancel
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._cancel()


class Transport:
    """Uniform message-egress facade for one node.

    Every protocol send funnels through here, which provides:

    * wire-size resolution (explicit ``size_bytes`` or :func:`estimate_size`),
    * per-node traffic counters independent of the substrate, and
    * a single choke point for substrate-level batching — the simulated
      network batches same-destination deliveries, so routing all sends
      through the facade makes that optimization protocol-agnostic.
    """

    __slots__ = ("runtime", "messages_sent", "bytes_sent", "_groups", "_obs")

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Memoized self-filtered destination lists, keyed by the (tuple)
        #: destination group protocols pass for their stable fan-outs.
        self._groups: dict = {}
        #: Observability hook (``repro.obs.Tracer``); ``None`` = off.  On
        #: the simulator substrate hops are recorded at the network layer
        #: instead (richer timing), so ``_SimTransport`` never reads this.
        self._obs = None

    def send(self, dst: str, message: Any, size_bytes: Optional[int] = None) -> None:
        """Send ``message`` to the node named ``dst``."""
        size = size_bytes if size_bytes is not None else estimate_size(message)
        self.messages_sent += 1
        self.bytes_sent += size
        obs = self._obs
        if obs is not None:
            obs.transport_send(self.runtime.node_id, dst, message, size)
        self.runtime.send(dst, message, size)

    def broadcast(self, destinations: Iterable[str], message: Any, size_bytes: Optional[int] = None) -> None:
        """Send one logical ``message`` to every destination except the owner.

        The wire size is resolved once for the whole group (``wire_size()``
        on a large batch message is O(batch), so per-peer recomputation was
        a real cost at high fan-out) and the group is handed to the
        runtime's multicast primitive: on the simulator that is the
        network-layer fast path, which charges identical per-destination
        costs but allocates one shared logical message and one transmit
        event for the group.
        """
        size = size_bytes if size_bytes is not None else estimate_size(message)
        if type(destinations) is tuple:
            # Stable fan-out groups (replica sets) arrive as tuples; the
            # self-filtered list is computed once per distinct group rather
            # than once per send.
            dsts = self._groups.get(destinations)
            if dsts is None:
                node_id = self.runtime.node_id
                dsts = [dst for dst in destinations if dst != node_id]
                self._groups[destinations] = dsts
        else:
            node_id = self.runtime.node_id
            dsts = [dst for dst in destinations if dst != node_id]
        if not dsts:
            return
        count = len(dsts)
        self.messages_sent += count
        self.bytes_sent += size * count
        obs = self._obs
        if obs is not None:
            node_id = self.runtime.node_id
            for dst in dsts:
                obs.transport_send(node_id, dst, message, size)
        self.runtime.multicast(dsts, message, size)


class Runtime(abc.ABC):
    """Abstract transport/scheduling environment for one protocol node."""

    #: Name (address) of the node this runtime belongs to.
    node_id: str
    #: Deterministic random stream private to this node.
    rng: random.Random

    @property
    def transport(self) -> Transport:
        """The egress facade all protocol sends route through (lazily built)."""
        facade = getattr(self, "_transport", None)
        if facade is None:
            facade = Transport(self)
            self._transport = facade
        return facade

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (simulated or monotonic wall time)."""

    @abc.abstractmethod
    def send(self, dst: str, message: Any, size_bytes: Optional[int] = None) -> None:
        """Substrate-level send primitive; protocols use :attr:`transport`.

        ``size_bytes`` lets protocols report the wire size of a message for
        bandwidth accounting; when omitted, the runtime estimates it from
        the message itself (see :func:`estimate_size`).
        """

    def multicast(self, dsts: Sequence[str], message: Any, size_bytes: Optional[int] = None) -> None:
        """Substrate-level fan-out primitive; protocols use
        :meth:`Transport.broadcast`.

        The default implementation degenerates to sequential sends, which
        is always behaviourally correct; substrates with a native fan-out
        path (the simulator's :meth:`repro.sim.network.Host.multicast`)
        override it.
        """
        size = size_bytes if size_bytes is not None else estimate_size(message)
        for dst in dsts:
            self.send(dst, message, size)

    @abc.abstractmethod
    def after(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` once after ``delay`` seconds."""

    @abc.abstractmethod
    def set_handler(self, handler: Callable[[str, Any], None]) -> None:
        """Register the ``handler(sender, message)`` delivery callback."""

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` once at absolute time ``when`` (no cancel handle).

        Fire-and-forget variant of :meth:`after` for hot-path schedulers
        that manage their own lifecycle (the callback must check its own
        liveness); substrates with a cheaper absolute-time primitive
        override it.
        """
        delay = when - self.now()
        self.after(delay if delay > 0.0 else 0.0, callback)

    # ------------------------------------------------------------------
    # Convenience helpers shared by all runtimes
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer: Any) -> None:
        """Install an observability hook on this runtime's egress path.

        The base implementation hooks the transport facade (substrates
        without a deeper vantage point); the simulator runtime overrides
        this to hook the network delivery path instead, where hop timing
        (queueing + propagation) is actually known.
        """
        self.transport._obs = tracer

    def broadcast(self, destinations: Any, message: Any, size_bytes: Optional[int] = None) -> None:
        """Send ``message`` to every destination (excluding self)."""
        self.transport.broadcast(destinations, message, size_bytes)

    def periodic(self, interval: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` every ``interval`` seconds until cancelled."""
        state = {"timer": None, "stopped": False}

        def tick() -> None:
            if state["stopped"]:
                return
            callback()
            if not state["stopped"]:
                state["timer"] = self.after(interval, tick)

        state["timer"] = self.after(interval, tick)

        def cancel() -> None:
            state["stopped"] = True
            inner = state["timer"]
            if inner is not None:
                inner.cancel()

        return Timer(cancel)
