"""The :class:`Runtime` interface protocol nodes are written against.

A runtime provides four things:

* a clock (:meth:`Runtime.now`),
* message transmission (:meth:`Runtime.send`),
* one-shot timers (:meth:`Runtime.after`), and
* a deterministic random stream (:attr:`Runtime.rng`).

Protocol nodes register a message handler with :meth:`Runtime.set_handler`
and from then on are purely reactive: every state transition happens inside
a message delivery or a timer callback.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Callable, Optional

__all__ = ["Runtime", "Timer"]


class Timer:
    """Handle for a scheduled callback; supports cancellation."""

    def __init__(self, cancel: Callable[[], None]) -> None:
        self._cancel = cancel
        self.cancelled = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._cancel()


class Runtime(abc.ABC):
    """Abstract transport/scheduling environment for one protocol node."""

    #: Name (address) of the node this runtime belongs to.
    node_id: str
    #: Deterministic random stream private to this node.
    rng: random.Random

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (simulated or monotonic wall time)."""

    @abc.abstractmethod
    def send(self, dst: str, message: Any, size_bytes: Optional[int] = None) -> None:
        """Send ``message`` to the node named ``dst``.

        ``size_bytes`` lets protocols report the wire size of a message for
        bandwidth accounting; when omitted, the runtime estimates it from
        the message itself (see :func:`repro.canopus.messages.wire_size`).
        """

    @abc.abstractmethod
    def after(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` once after ``delay`` seconds."""

    @abc.abstractmethod
    def set_handler(self, handler: Callable[[str, Any], None]) -> None:
        """Register the ``handler(sender, message)`` delivery callback."""

    # ------------------------------------------------------------------
    # Convenience helpers shared by all runtimes
    # ------------------------------------------------------------------
    def broadcast(self, destinations: Any, message: Any, size_bytes: Optional[int] = None) -> None:
        """Send ``message`` to every destination (excluding self)."""
        for dst in destinations:
            if dst != self.node_id:
                self.send(dst, message, size_bytes)

    def periodic(self, interval: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` every ``interval`` seconds until cancelled."""
        state = {"timer": None, "stopped": False}

        def tick() -> None:
            if state["stopped"]:
                return
            callback()
            if not state["stopped"]:
                state["timer"] = self.after(interval, tick)

        state["timer"] = self.after(interval, tick)

        def cancel() -> None:
            state["stopped"] = True
            inner = state["timer"]
            if inner is not None:
                inner.cancel()

        return Timer(cancel)
